"""The obs bundle wired through the RichClient, gateway and async path."""

import pytest

from repro import RichClient, build_world
from repro.core.gateway import SdkGateway
from repro.core.ratelimit import ServiceRateLimiter
from repro.obs import Observability
from repro.util.clock import ManualClock

TEXT = {"text": "Acme Corp shares rallied in Paris."}


@pytest.fixture
def gateway(client):
    return SdkGateway(client)


class TestInvokeTracing:
    def test_invoke_produces_span_and_trace_id_in_monitor(self, client):
        client.invoke("lexica-prime", "analyze", TEXT)
        spans = client.obs.collector.spans()
        invokes = [span for span in spans if span.name == "sdk.invoke"]
        assert len(invokes) == 1
        span = invokes[0]
        assert span.attributes["service"] == "lexica-prime"
        assert span.status == "ok"
        assert span.attributes["latency"] > 0.0
        record = client.monitor.records("lexica-prime")[-1]
        assert record.trace_id == span.trace_id

    def test_transport_span_nests_under_invoke(self, client):
        client.invoke("lexica-prime", "analyze", TEXT)
        spans = client.obs.collector.spans()
        transport = next(span for span in spans if span.name == "transport.call")
        invoke = next(span for span in spans if span.name == "sdk.invoke")
        assert transport.parent_id == invoke.span_id
        assert transport.trace_id == invoke.trace_id
        assert transport.attributes["obs.category"] == "transport"
        assert transport.duration == pytest.approx(
            invoke.attributes["latency"])

    def test_standalone_cache_hit_emits_no_span(self, client):
        client.invoke("lexica-prime", "analyze", TEXT)
        before = len(client.obs.collector)
        hit = client.invoke("lexica-prime", "analyze", TEXT)
        assert hit.cached
        assert len(client.obs.collector) == before
        # ...but the hit is still counted.
        assert client.obs.metrics.counter("cache_hits_total").total() == 1.0

    def test_cache_hit_inside_a_trace_becomes_instant_span(self, client):
        client.invoke("lexica-prime", "analyze", TEXT)
        with client.obs.tracer.span("app.request") as root:
            client.invoke("lexica-prime", "analyze", TEXT)
        cached = [span for span in client.obs.collector.spans()
                  if span.attributes.get("cached")]
        assert len(cached) == 1
        assert cached[0].trace_id == root.trace_id
        assert cached[0].duration == 0.0
        record = client.monitor.records("lexica-prime",
                                        include_cached=True)[-1]
        assert record.cached
        assert record.trace_id == root.trace_id

    def test_failed_invoke_records_error_span(self, client, world):
        from repro.services.base import ScriptedFailures
        from repro.simnet.errors import RemoteServiceError

        world.registry.get("glotta").failures = ScriptedFailures({0})
        with pytest.raises(RemoteServiceError):
            client.invoke("glotta", "analyze", TEXT)
        span = next(span for span in client.obs.collector.spans()
                    if span.name == "sdk.invoke")
        assert span.status == "error"
        assert "glotta" in span.error

    def test_disabled_obs_collects_nothing(self, world):
        client = RichClient(world.registry, obs=Observability.disabled())
        try:
            client.invoke("lexica-prime", "analyze", TEXT)
            client.invoke("lexica-prime", "analyze", TEXT)
            assert len(client.obs.collector) == 0
            assert client.obs.metrics.names() == []
        finally:
            client.close()


class TestMetricsReconciliation:
    def test_counters_match_monitor_aggregates(self, client, world):
        from repro.services.base import ScriptedFailures
        from repro.simnet.errors import RemoteServiceError

        world.registry.get("glotta").failures = ScriptedFailures({0})
        client.invoke("lexica-prime", "analyze", TEXT)
        client.invoke("lexica-prime", "analyze", TEXT)  # cache hit
        with pytest.raises(RemoteServiceError):
            client.invoke("glotta", "analyze", TEXT)

        counter = client.obs.metrics.counter("sdk_invocations_total")
        monitor = client.monitor
        for service in monitor.services():
            records = monitor.records(service, include_cached=True)
            expected = {
                "success": sum(1 for r in records
                               if r.success and not r.cached),
                "failure": sum(1 for r in records if not r.success),
                "cached": sum(1 for r in records if r.cached),
            }
            for outcome, count in expected.items():
                assert counter.value(service=service, outcome=outcome) == count

        histogram = client.obs.metrics.get("sdk_invocation_latency_seconds")
        assert histogram.count(service="lexica-prime") == 1
        assert histogram.sum(service="lexica-prime") == pytest.approx(
            sum(monitor.latencies("lexica-prime")))

    def test_cache_counters_track_cache_stats(self, client):
        client.invoke("lexica-prime", "analyze", TEXT)
        client.invoke("lexica-prime", "analyze", TEXT)
        client.invoke("lexica-prime", "analyze", {"text": "other text"})
        metrics = client.obs.metrics
        stats = client.cache.stats
        assert metrics.counter("cache_hits_total").total() == stats.hits
        assert metrics.counter("cache_misses_total").total() == stats.misses

    def test_transport_counters_track_transport_stats(self, client, world):
        client.invoke("lexica-prime", "analyze", TEXT)
        client.invoke("goggle", "search", {"query": "acme"})
        metrics = client.obs.metrics
        stats = world.transport.stats
        calls = metrics.counter("transport_calls_total")
        assert calls.total() == stats.calls
        assert calls.value(endpoint="lexica-prime") == 1
        assert metrics.counter(
            "transport_bytes_sent_total").total() == stats.bytes_sent
        assert metrics.counter(
            "transport_bytes_received_total").total() == stats.bytes_received


class TestAsyncPropagation:
    def test_async_invoke_inherits_parent_span(self, client):
        """A span current at submit time parents the pool-thread spans."""
        with client.obs.tracer.span("app.request") as root:
            client.invoke_async("lexica-prime", "analyze", TEXT).get(timeout=10.0)
        invoke = next(span for span in client.obs.collector.spans()
                      if span.name == "sdk.invoke")
        assert invoke.trace_id == root.trace_id
        assert invoke.parent_id == root.span_id

    def test_raising_listener_does_not_poison_future_or_executor(self, client):
        future = client.invoke_async("lexica-prime", "analyze", TEXT)
        results = []

        def bad_listener(completed):
            raise RuntimeError("listener bug")

        def good_listener(completed):
            results.append(completed.get())

        future.add_listener(bad_listener)
        future.add_listener(good_listener)
        value = future.get(timeout=10.0)
        assert value.value is not None
        # The bad listener was quarantined, the good one still ran.
        assert len(future.listener_errors) == 1
        assert isinstance(future.listener_errors[0], RuntimeError)
        assert results and results[0] is value
        # The executor still works afterwards.
        again = client.invoke_async("glotta", "analyze", TEXT)
        assert again.get(timeout=10.0).service == "glotta"


class TestGateway:
    def test_metrics_method_returns_exposition_and_snapshot(self, client, gateway):
        client.invoke("lexica-prime", "analyze", TEXT)
        response = gateway.handle({"method": "metrics"})
        assert response["status"] == 200
        assert "sdk_invocations_total" in response["result"]["exposition"]
        assert "sdk_invocations_total" in response["result"]["metrics"]

    def test_traces_method_returns_collected_spans(self, client, gateway):
        client.invoke("lexica-prime", "analyze", TEXT)
        response = gateway.handle({"method": "traces"})
        assert response["status"] == 200
        traces = response["result"]["traces"]
        assert len(traces) == 1
        names = {span["name"] for span in traces[0]["spans"]}
        assert {"sdk.invoke", "transport.call"} <= names
        assert response["result"]["dropped_spans"] == 0

    def test_traces_method_honours_limit(self, client, gateway):
        client.invoke("lexica-prime", "analyze", TEXT)
        client.invoke("goggle", "search", {"query": "acme"})
        response = gateway.handle({"method": "traces", "params": {"limit": 1}})
        assert len(response["result"]["traces"]) == 1

    def test_attribution_method_reports_transport_share(self, client, gateway):
        client.invoke("lexica-prime", "analyze", TEXT)
        response = gateway.handle({"method": "attribution"})
        assert response["status"] == 200
        aggregate = response["result"]["aggregate"]
        assert aggregate["traces"] == 1
        assert aggregate["shares"]["transport"] == pytest.approx(1.0)

    def test_rate_limit_maps_to_429_with_retry_after(self, world):
        limiter = ServiceRateLimiter(world.clock)
        limiter.configure("lexica-prime", rate=0.5, burst=1)
        client = RichClient(world.registry, rate_limiter=limiter)
        gateway = SdkGateway(client)
        request = {"method": "invoke",
                   "params": {"service": "lexica-prime",
                              "operation": "analyze", "payload": TEXT,
                              "use_cache": False}}
        try:
            assert gateway.handle(request)["status"] == 200
            throttled = gateway.handle(request)
            assert throttled["status"] == 429
            assert throttled["error_type"] == "RateLimitExceededError"
            # The bucket refills at 0.5 permits/s, so the next permit is
            # strictly less than 2 simulated seconds away.
            assert 0.0 < throttled["retry_after"] <= 2.0
        finally:
            client.close()

    def test_circuit_open_maps_to_429_with_retry_after(self, client, gateway,
                                                       monkeypatch):
        from repro.core.circuitbreaker import CircuitOpenError

        def tripped(params):
            raise CircuitOpenError("lexica-prime",
                                   retry_at=client.clock.now() + 7.5)

        monkeypatch.setattr(gateway, "_method_invoke", tripped)
        response = gateway.handle({"method": "invoke", "params": {}})
        assert response["status"] == 429
        assert response["error_type"] == "CircuitOpenError"
        assert response["retry_after"] == pytest.approx(7.5)

    def test_budget_exceeded_still_429_without_retry_after(self, client, gateway):
        client.quota.set_budget("lexica-prime", max_calls=0)
        response = gateway.handle(
            {"method": "invoke",
             "params": {"service": "lexica-prime", "operation": "analyze",
                        "payload": TEXT}})
        assert response["status"] == 429
        assert "retry_after" not in response


class TestKbPipeline:
    def test_pipeline_spans_and_counters(self):
        from repro.kb.pipeline import AnalysisPipeline

        obs = Observability(clock=ManualClock())
        pipeline = AnalysisPipeline(obs=obs)
        pipeline.analyze_series(
            "acme", [0, 1, 2, 3], [1.0, 2.0, 3.0, 4.0],
            series_name="revenue", entity_type="Company")
        derived = pipeline.infer()
        assert derived > 0
        names = [span.name for span in obs.collector.spans()]
        assert "kb.analyze_series" in names
        assert "kb.infer" in names
        infer_span = next(span for span in obs.collector.spans()
                          if span.name == "kb.infer")
        assert infer_span.attributes["facts_derived"] == derived
        assert obs.metrics.counter(
            "kb_series_analyzed_total").total() == 1.0
        assert obs.metrics.counter(
            "kb_facts_inferred_total").total() == derived
