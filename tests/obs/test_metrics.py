"""Counters, gauges, histograms and the Prometheus-style exposition."""

import threading

import pytest

from repro.obs.metrics import Counter, Gauge, HistogramMetric, MetricsRegistry
from repro.util.errors import ConfigurationError


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(2.0)
        assert counter.value() == 3.0

    def test_labels_partition_the_series(self):
        counter = Counter("calls_total")
        counter.inc(service="a")
        counter.inc(service="a")
        counter.inc(service="b")
        assert counter.value(service="a") == 2.0
        assert counter.value(service="b") == 1.0
        assert counter.total() == 3.0

    def test_label_order_is_canonical(self):
        counter = Counter("c_total")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2.0
        assert len(counter.series()) == 1

    def test_negative_increment_rejected(self):
        counter = Counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_bound_counter_hits_same_series(self):
        counter = Counter("c_total")
        bound = counter.bind(service="svc")
        bound.inc()
        bound.inc(4.0)
        assert counter.value(service="svc") == 5.0

    def test_render_includes_help_type_and_labels(self):
        counter = Counter("hits_total", "Cache hits.")
        counter.inc(3, service="svc")
        lines = counter.render_lines()
        assert "# HELP hits_total Cache hits." in lines
        assert "# TYPE hits_total counter" in lines
        assert 'hits_total{service="svc"} 3' in lines

    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("bad name!")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("pool_depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4.0


class TestHistogram:
    def test_cumulative_buckets_end_with_inf(self):
        histogram = HistogramMetric("latency_seconds", low=0.0, high=1.0, bins=4)
        for value in (0.1, 0.3, 0.6, 0.9, 5.0):
            histogram.observe(value)
        buckets = histogram.buckets()
        assert buckets[-1] == (float("inf"), 5)
        # Cumulative counts never decrease.
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        # 0.1 lands at or below the 0.25 edge; the overflow (5.0) only
        # appears in +Inf.
        assert buckets[0] == (0.25, 1)
        assert buckets[-2][1] == 4

    def test_underflow_folds_into_first_bucket(self):
        histogram = HistogramMetric("h", low=1.0, high=2.0, bins=2)
        histogram.observe(0.5)
        buckets = histogram.buckets()
        assert buckets[0][1] == 1

    def test_sum_and_count(self):
        histogram = HistogramMetric("h", low=0.0, high=1.0, bins=2)
        histogram.observe(0.25, service="a")
        histogram.observe(0.5, service="a")
        assert histogram.count(service="a") == 2
        assert histogram.sum(service="a") == pytest.approx(0.75)
        assert histogram.count(service="other") == 0

    def test_render_has_bucket_sum_count_lines(self):
        histogram = HistogramMetric("h", "desc", low=0.0, high=1.0, bins=2)
        histogram.observe(0.25)
        lines = histogram.render_lines()
        assert any(line.startswith('h_bucket{le="0.5"} ') for line in lines)
        assert any(line.startswith('h_bucket{le="+Inf"} ') for line in lines)
        assert any(line.startswith("h_sum") for line in lines)
        assert any(line.startswith("h_count") for line in lines)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "desc")
        second = registry.counter("c_total")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ConfigurationError):
            registry.gauge("m")

    def test_render_concatenates_all_metrics(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A.").inc()
        registry.gauge("b").set(2)
        text = registry.render()
        assert "# TYPE a_total counter" in text
        assert "# TYPE b gauge" in text
        assert text.endswith("\n")

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a_total").inc(service="x")
        registry.histogram("h_seconds", low=0.0, high=1.0, bins=2).observe(0.3)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert "a_total" in snapshot
        assert "h_seconds" in snapshot

    def test_concurrent_increments_do_not_lose_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        bound = counter.bind(worker="w")

        def hammer():
            for _ in range(1000):
                bound.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(worker="w") == 8000.0
