"""Span lifecycle, context propagation and the bounded collector."""

import json

import pytest

from repro.obs.tracing import NULL_SPAN, SpanCollector, Tracer
from repro.util.clock import ManualClock


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock, collector=SpanCollector(capacity=100))


class TestSpanLifecycle:
    def test_span_times_off_the_clock(self, tracer, clock):
        with tracer.span("work") as span:
            clock.charge(0.25)
        assert span.duration == pytest.approx(0.25)
        assert span.status == "ok"
        assert not span.is_recording

    def test_nested_spans_share_trace_and_link_parent(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_roots_get_distinct_traces(self, tracer):
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.trace_id != second.trace_id

    def test_exception_marks_error_and_reraises(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("doomed") as span:
                raise ValueError("boom")
        assert span.status == "error"
        assert "boom" in span.error
        assert span.end_time is not None
        # The context is restored even on the error path.
        assert tracer.current_span() is None

    def test_events_carry_clock_timestamps(self, tracer, clock):
        with tracer.span("work") as span:
            clock.charge(0.1)
            span.add_event("checkpoint", {"n": 1})
        event = span.events[0]
        assert event.name == "checkpoint"
        assert event.timestamp == pytest.approx(0.1)
        assert event.attributes == {"n": 1}

    def test_add_event_outside_any_span_is_a_noop(self, tracer):
        tracer.add_event("orphan")  # must not raise
        assert len(tracer.collector) == 0

    def test_attributes_round_trip_in_to_dict(self, tracer):
        with tracer.span("work", {"service": "svc"}) as span:
            span.set_attribute("latency", 0.5)
        payload = span.to_dict()
        assert payload["attributes"] == {"service": "svc", "latency": 0.5}
        assert payload["name"] == "work"
        assert payload["trace_id"] == span.trace_id

    def test_start_end_span_manual_pairing(self, tracer, clock):
        span = tracer.start_span("manual")
        clock.charge(1.0)
        tracer.end_span(span)
        assert span.duration == pytest.approx(1.0)
        assert tracer.collector.spans() == [span]

    def test_manual_span_does_not_become_current(self, tracer):
        tracer.start_span("manual")
        assert tracer.current_span() is None

    def test_instant_span_is_zero_duration(self, tracer, clock):
        clock.charge(2.0)
        with tracer.span("parent") as parent:
            span = tracer.instant_span("hit", {"cached": True})
        assert span.duration == 0.0
        assert span.start_time == pytest.approx(2.0)
        assert span.parent_id == parent.span_id
        assert span.trace_id == parent.trace_id


class TestDisabledTracer:
    def test_disabled_span_yields_null_span(self, clock):
        tracer = Tracer(clock=clock, enabled=False)
        with tracer.span("work") as span:
            assert span is NULL_SPAN
            span.set_attribute("ignored", 1)
            span.add_event("ignored")
        assert len(tracer.collector) == 0

    def test_disabled_instant_span_returns_none(self, clock):
        tracer = Tracer(clock=clock, enabled=False)
        assert tracer.instant_span("hit") is None


class TestSpanCollector:
    def test_capacity_evicts_oldest_and_counts_drops(self, clock):
        collector = SpanCollector(capacity=3)
        tracer = Tracer(clock=clock, collector=collector)
        for index in range(5):
            with tracer.span(f"span-{index}"):
                pass
        assert len(collector) == 3
        assert collector.dropped == 2
        assert [span.name for span in collector.spans()] == [
            "span-2", "span-3", "span-4"]

    def test_traces_groups_by_trace_id(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        with tracer.span("lone"):
            pass
        traces = tracer.collector.traces()
        assert len(traces) == 2
        sizes = sorted(len(spans) for spans in traces.values())
        assert sizes == [1, 2]

    def test_export_jsonl(self, tmp_path, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("root", {"k": "v"}):
            clock.charge(0.5)
        path = tmp_path / "spans.jsonl"
        written = tracer.collector.export_jsonl(path)
        assert written == 1
        lines = path.read_text().splitlines()
        payload = json.loads(lines[0])
        assert payload["name"] == "root"
        assert payload["duration"] == pytest.approx(0.5)

    def test_clear_resets_spans_and_dropped(self, clock):
        collector = SpanCollector(capacity=1)
        tracer = Tracer(clock=clock, collector=collector)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert collector.dropped == 1
        collector.clear()
        assert len(collector) == 0
        assert collector.dropped == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            SpanCollector(capacity=0)


class TestContextPropagation:
    def test_span_survives_callback_executor(self, clock):
        from repro.core.futures import CallbackExecutor

        tracer = Tracer(clock=clock)
        observed = {}

        def on_pool_thread():
            with tracer.span("pooled") as span:
                observed["parent_id"] = span.parent_id
                observed["trace_id"] = span.trace_id

        with CallbackExecutor(max_workers=2) as executor:
            with tracer.span("submitting") as root:
                executor.submit(on_pool_thread).get(timeout=5.0)
        assert observed["parent_id"] == root.span_id
        assert observed["trace_id"] == root.trace_id

    def test_ids_are_deterministic_counters(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("first") as first:
            pass
        assert first.trace_id == "t00000001"
        assert first.span_id == "s00000002"
