"""Latency attribution: synthetic traces and the failover acceptance case."""

import pytest

from repro import RichClient, build_world
from repro.core.retry import FailoverInvoker, RetryPolicy
from repro.obs.attribution import (
    CATEGORY_BACKOFF,
    CATEGORY_TRANSPORT,
    EVENT_BACKOFF,
    TraceAnalyzer,
    attribute_trace,
)
from repro.obs.tracing import SpanCollector, Tracer
from repro.services.base import ScriptedFailures


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock, collector=SpanCollector())


class TestAttributeTrace:
    def test_splits_transport_and_backoff(self, tracer, clock):
        with tracer.span("root") as root:
            root.add_event(EVENT_BACKOFF,
                           {"service": "svc", "seconds": 0.5})
            clock.charge(0.5)
            with tracer.span("transport.call",
                             {"endpoint": "svc", "obs.category": "transport"}):
                clock.charge(0.3)
            clock.charge(0.2)  # SDK bookkeeping: unattributed
        report = attribute_trace(tracer.collector.trace(root.trace_id))
        assert report.wall_time == pytest.approx(1.0)
        assert report.categories[CATEGORY_TRANSPORT] == pytest.approx(0.3)
        assert report.categories[CATEGORY_BACKOFF] == pytest.approx(0.5)
        assert report.unattributed == pytest.approx(0.2)
        assert report.share(CATEGORY_TRANSPORT) == pytest.approx(0.3)
        assert report.per_service["svc"][CATEGORY_TRANSPORT] == pytest.approx(0.3)

    def test_returns_none_without_a_completed_root(self, tracer, clock):
        span = tracer.start_span("open-root")
        assert attribute_trace([span]) is None

    def test_to_dict_is_json_safe(self, tracer, clock):
        import json

        with tracer.span("root"):
            clock.charge(0.1)
        report = attribute_trace(tracer.collector.spans())
        json.dumps(report.to_dict())


class TestAnalyzer:
    def test_aggregate_shares_sum_to_one(self, tracer, clock):
        for _ in range(3):
            with tracer.span("root") as root:
                root.add_event(EVENT_BACKOFF, {"service": "s", "seconds": 0.4})
                clock.charge(0.4)
                with tracer.span("transport.call",
                                 {"endpoint": "s", "obs.category": "transport"}):
                    clock.charge(0.6)
        aggregate = TraceAnalyzer(tracer.collector).aggregate()
        assert aggregate["traces"] == 3
        assert aggregate["total_wall_time"] == pytest.approx(3.0)
        assert sum(aggregate["shares"].values()) == pytest.approx(1.0)
        assert aggregate["shares"][CATEGORY_TRANSPORT] == pytest.approx(0.6)

    def test_render_lists_recent_traces(self, tracer, clock):
        with tracer.span("sdk.invoke"):
            clock.charge(0.2)
        text = TraceAnalyzer(tracer.collector).render()
        assert "sdk.invoke" in text
        assert "wall(s)" in text


class TestFailoverAcceptance:
    """ISSUE acceptance: a traced failover across three NLU services,
    two of them down, must decompose into transport + backoff that
    reconcile with the simnet-charged wall time."""

    def test_failover_trace_reconciles_with_charged_latency(self):
        world = build_world(seed=42, corpus_size=30)
        client = RichClient(
            world.registry,
            failover=FailoverInvoker(
                default_policy=RetryPolicy(max_attempts=2, backoff=0.5),
                clock=world.clock,
            ),
        )
        try:
            ranked = [name for name, _ in client.rank_services("nlu")]
            failing = ranked[:2]
            for name in failing:
                world.registry.get(name).failures = ScriptedFailures(set(range(10)))

            start = world.clock.now()
            result = client.invoke_with_failover(
                "nlu", "analyze", {"text": "Acme Corp shares rallied."})
            elapsed = world.clock.now() - start
            assert result.service == ranked[2]

            traces = client.obs.collector.traces()
            root_traces = [
                spans for spans in traces.values()
                if any(span.name == "sdk.invoke_with_failover" for span in spans)
            ]
            assert len(root_traces) == 1
            spans = root_traces[0]
            root = next(span for span in spans
                        if span.name == "sdk.invoke_with_failover")

            # One child span per attempt: two failing services x two
            # attempts each, plus the final success.
            attempts = [span for span in spans if span.name == "failover.attempt"]
            assert len(attempts) == 5
            assert all(span.parent_id == root.span_id for span in attempts)
            assert [span.attributes["service"] for span in attempts] == [
                failing[0], failing[0], failing[1], failing[1], ranked[2]]

            # Backoff sleeps are events on the root span: one per retried
            # service, each 0.5 simulated seconds.
            backoffs = [event for event in root.events
                        if event.name == EVENT_BACKOFF]
            assert len(backoffs) == 2
            assert [event.attributes["seconds"] for event in backoffs] == [0.5, 0.5]

            # Attribution reconciles with what the simnet charged: the
            # root's wall time is exactly the elapsed simulated time, and
            # transport + backoff account for all of it (within 5%).
            report = attribute_trace(spans)
            assert report.wall_time == pytest.approx(elapsed)
            attributed = (report.categories[CATEGORY_TRANSPORT]
                          + report.categories[CATEGORY_BACKOFF])
            assert attributed == pytest.approx(elapsed, rel=0.05)
            assert report.categories[CATEGORY_BACKOFF] == pytest.approx(1.0)
            # The winning service is billed its wire time.
            assert report.per_service[ranked[2]][CATEGORY_TRANSPORT] > 0.0
        finally:
            client.close()
