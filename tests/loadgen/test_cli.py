"""Tests for the ``python -m repro.loadgen`` command line."""

import json

import pytest

from repro.loadgen.__main__ import _parse_aggressor, main


class TestAggressorParsing:
    def test_rank_and_multiplier(self):
        aggressor = _parse_aggressor("3:12.5")
        assert aggressor.rank == 3
        assert aggressor.multiplier == 12.5

    def test_multiplier_defaults_to_ten(self):
        assert _parse_aggressor("2").multiplier == 10.0

    def test_garbage_is_an_argument_error(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_aggressor("not-a-rank:much")


class TestMain:
    ARGS = ["--tenants", "20", "--rate", "100", "--duration", "2",
            "--seed", "7"]

    def test_text_report(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "discipline=fair" in out
        assert "busiest tenants" in out

    def test_json_report_parses(self, capsys):
        assert main([*self.ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["discipline"] == "fair"
        assert payload["arrivals"] > 0

    def test_output_is_deterministic(self, capsys):
        main([*self.ARGS, "--json"])
        first = capsys.readouterr().out
        main([*self.ARGS, "--json"])
        assert capsys.readouterr().out == first

    def test_fifo_and_aggressor_flags(self, capsys):
        assert main([*self.ARGS, "--discipline", "fifo",
                     "--aggressor", "0:10"]) == 0
        assert "discipline=fifo" in capsys.readouterr().out

    def test_closed_loop_flag(self, capsys):
        assert main([*self.ARGS, "--closed"]) == 0
        assert "arrivals=" in capsys.readouterr().out

    def test_bad_aggressor_exits_with_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main([*self.ARGS, "--aggressor", "x:y"])
        assert excinfo.value.code == 2
