"""Tests for load-run reporting: Jain's index, tenant stats, reports."""

import pytest

from repro.loadgen.report import RunReport, TenantStats, jain_index


class TestJainIndex:
    def test_equal_shares_score_one(self):
        assert jain_index([0.5, 0.5, 0.5]) == pytest.approx(1.0)

    def test_monopoly_approaches_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_are_vacuously_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_mild_skew_scores_between(self):
        value = jain_index([1.0, 0.5])
        assert 0.25 < value < 1.0


class TestTenantStats:
    def test_rates(self):
        stats = TenantStats("t1", arrivals=10, completions=7, sheds=3)
        assert stats.shed_rate == pytest.approx(0.3)
        assert stats.delivered_fraction == pytest.approx(0.7)

    def test_idle_tenant_rates_are_zero(self):
        stats = TenantStats("t1")
        assert stats.shed_rate == 0.0
        assert stats.delivered_fraction == 0.0

    def test_percentiles(self):
        stats = TenantStats("t1", latencies=[0.1, 0.2, 0.3, 0.4])
        assert stats.latency_percentile(0.5) == pytest.approx(0.25)
        assert TenantStats("t1").latency_percentile(0.5) is None

    def test_to_dict_survives_no_data(self):
        payload = TenantStats("t1", arrivals=2, sheds=2).to_dict()
        assert payload["p99"] is None
        assert payload["mean"] is None
        assert payload["shed_rate"] == 1.0


def _report(tenants):
    return RunReport(discipline="fair", seed=7, duration=10.0,
                     tenants={stats.tenant_id: stats for stats in tenants})


class TestRunReport:
    def test_totals(self):
        report = _report([
            TenantStats("a", arrivals=10, completions=8, sheds=2),
            TenantStats("b", arrivals=5, completions=5),
        ])
        assert report.total_arrivals == 15
        assert report.total_completions == 13
        assert report.shed_rate == pytest.approx(2 / 15)

    def test_fairness_normalizes_by_weight(self):
        # A weight-2 tenant delivered at double the fraction is *fair*.
        report = _report([
            TenantStats("heavy", weight=2.0, arrivals=10, completions=10),
            TenantStats("light", weight=1.0, arrivals=10, completions=5),
        ])
        assert report.fairness() == pytest.approx(1.0)

    def test_fairness_ignores_idle_tenants(self):
        report = _report([
            TenantStats("busy", arrivals=10, completions=10),
            TenantStats("idle"),
        ])
        assert report.fairness(min_arrivals=1) == pytest.approx(1.0)

    def test_fairness_penalizes_starvation(self):
        report = _report([
            TenantStats("winner", arrivals=10, completions=10),
            TenantStats("starved", arrivals=10, completions=0),
        ])
        assert report.fairness() == pytest.approx(0.5)

    def test_to_dict_orders_tenants(self):
        report = _report([TenantStats("b", arrivals=1),
                          TenantStats("a", arrivals=1)])
        payload = report.to_dict()
        assert [entry["tenant"] for entry in payload["tenants"]] == ["a", "b"]

    def test_tenant_lookup(self):
        report = _report([TenantStats("a")])
        assert report.tenant("a").tenant_id == "a"
        with pytest.raises(KeyError):
            report.tenant("ghost")

    def test_render_mentions_the_aggregates(self):
        report = _report([
            TenantStats("a", arrivals=3, completions=3,
                        latencies=[0.1, 0.2, 0.3]),
        ])
        text = report.render()
        assert "discipline=fair" in text
        assert "arrivals=3" in text
        assert "a" in text
