"""Tests for the deterministic load driver."""

import pytest

from repro.loadgen import Aggressor, LoadSpec, run_spec
from repro.loadgen.driver import LoadDriver


class TestSpecValidation:
    def test_defaults_are_valid(self):
        LoadSpec()

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            LoadSpec(mode="chaotic")

    def test_bad_discipline(self):
        with pytest.raises(ValueError):
            LoadSpec(discipline="lifo")

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            LoadSpec(tenants=0)
        with pytest.raises(ValueError):
            LoadSpec(duration=0)
        with pytest.raises(ValueError):
            LoadSpec(service_time=0)
        with pytest.raises(ValueError):
            LoadSpec(concurrency=0)

    def test_aggressor_must_name_a_real_tenant(self):
        with pytest.raises(ValueError):
            LoadSpec(tenants=10, aggressors=(Aggressor(rank=10),))


class TestDeterminism:
    def test_same_spec_same_bytes(self):
        spec = LoadSpec(tenants=30, arrival_rate=200.0, duration=3.0, seed=7,
                        aggressors=(Aggressor(rank=0, multiplier=5.0),))
        assert run_spec(spec).to_dict() == run_spec(spec).to_dict()

    def test_different_seed_different_run(self):
        base = LoadSpec(tenants=30, arrival_rate=200.0, duration=3.0, seed=7)
        other = LoadSpec(tenants=30, arrival_rate=200.0, duration=3.0, seed=8)
        assert run_spec(base).to_dict() != run_spec(other).to_dict()

    def test_closed_loop_is_deterministic_too(self):
        spec = LoadSpec(tenants=20, mode="closed", closed_users=8,
                        duration=3.0, seed=7)
        assert run_spec(spec).to_dict() == run_spec(spec).to_dict()


class TestConservation:
    def test_every_arrival_is_served_or_shed(self):
        # The loop drains fully after arrivals stop, so the ledger
        # balances: nothing is lost in the queue at the end of the run.
        report = run_spec(LoadSpec(tenants=30, arrival_rate=500.0,
                                   duration=3.0, seed=7))
        assert report.total_arrivals > 0
        assert (report.total_completions + report.total_sheds
                == report.total_arrivals)

    def test_fifo_conserves_as_well(self):
        report = run_spec(LoadSpec(tenants=30, arrival_rate=500.0,
                                   duration=3.0, seed=7, discipline="fifo"))
        assert (report.total_completions + report.total_sheds
                == report.total_arrivals)


class TestModes:
    def test_closed_loop_users_generate_load(self):
        report = run_spec(LoadSpec(tenants=20, mode="closed", closed_users=8,
                                   think_time=0.05, duration=3.0, seed=7))
        assert report.total_arrivals > 50
        # At most one outstanding request per user: arrivals are bounded
        # by duration / (think + service) per user, far under open-loop.
        assert report.total_arrivals < 8 * 3.0 / 0.05

    def test_aggressor_floods_its_rank(self):
        calm = run_spec(LoadSpec(tenants=30, arrival_rate=200.0,
                                 duration=3.0, seed=7))
        stormy = run_spec(LoadSpec(tenants=30, arrival_rate=200.0,
                                   duration=3.0, seed=7,
                                   aggressors=(Aggressor(rank=0,
                                                         multiplier=10.0),)))
        assert (stormy.tenant("t00000").arrivals
                > 5 * calm.tenant("t00000").arrivals)

    def test_aggressor_window_is_respected(self):
        report = run_spec(LoadSpec(
            tenants=30, arrival_rate=50.0, duration=4.0, seed=7,
            aggressors=(Aggressor(rank=0, multiplier=50.0, start=1.0,
                                  stop=2.0),)))
        # The flood ran for a quarter of the run; without a window it
        # would dwarf the background stream entirely.
        flooded = report.tenant("t00000").arrivals
        assert 0 < flooded < report.total_arrivals

    def test_weights_are_recorded_in_stats(self):
        report = run_spec(LoadSpec(tenants=4, zipf_exponent=0.0,
                                   arrival_rate=100.0, duration=2.0, seed=7,
                                   weights={1: 3.0}))
        assert report.tenant("t00001").weight == 3.0
        assert report.tenant("t00000").weight == 1.0


class TestFairnessSatellite:
    """The issue's headline property, at unit-test scale.

    An aggressor at 10x its fair share must not push a well-behaved
    victim's p99 past 2x its solo baseline under the DRR discipline;
    the FIFO control demonstrably violates the same bound.
    """

    VICTIM = "t00005"

    def _run(self, discipline, aggressors=()):
        return run_spec(LoadSpec(tenants=50, arrival_rate=300.0,
                                 duration=6.0, seed=7,
                                 discipline=discipline,
                                 aggressors=aggressors))

    def test_fair_discipline_bounds_victim_p99(self):
        baseline = self._run("fair")
        flooded = self._run("fair", (Aggressor(rank=0, multiplier=10.0),))
        base_p99 = baseline.tenant(self.VICTIM).latency_percentile(0.99)
        fair_p99 = flooded.tenant(self.VICTIM).latency_percentile(0.99)
        assert fair_p99 <= 2.0 * base_p99
        assert flooded.fairness() >= 0.9

    def test_fifo_control_violates_the_bound(self):
        baseline = self._run("fair")
        flooded = self._run("fifo", (Aggressor(rank=0, multiplier=10.0),))
        base_p99 = baseline.tenant(self.VICTIM).latency_percentile(0.99)
        fifo_p99 = flooded.tenant(self.VICTIM).latency_percentile(0.99)
        assert fifo_p99 > 2.0 * base_p99
        # FIFO also sheds the victim: its requests find the shared
        # queue already full of the aggressor's backlog.
        assert flooded.tenant(self.VICTIM).shed_rate > 0.1


class TestDriverInternals:
    def test_clock_ends_at_the_last_event(self):
        driver = LoadDriver(LoadSpec(tenants=10, arrival_rate=100.0,
                                     duration=2.0, seed=7))
        driver.run()
        # The run drains past the last arrival while completions
        # finish, so the clock advances through most of the window.
        assert driver.clock.now() > 1.5

    def test_population_can_be_shared(self):
        from repro.loadgen.workload import TenantPopulation
        population = TenantPopulation(10, zipf_exponent=1.0)
        spec = LoadSpec(tenants=10, arrival_rate=100.0, duration=1.0, seed=7)
        a = LoadDriver(spec, population=population).run()
        b = LoadDriver(spec, population=population).run()
        assert a.to_dict() == b.to_dict()
