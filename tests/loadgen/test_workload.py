"""Tests for workload modelling: Zipf sampling, aggressors, populations."""

import pytest

from repro.loadgen.workload import Aggressor, TenantPopulation, ZipfSampler
from repro.util.rng import SeededRng


class TestZipfSampler:
    def test_draws_are_deterministic_under_a_fixed_seed(self):
        # The satellite requirement: same seed, same sample sequence.
        # All randomness lives in the caller's rng — the sampler itself
        # is stateless, so two samplers over the same seeded stream
        # must agree draw for draw.
        rng_a = SeededRng(7).child("tenants")
        rng_b = SeededRng(7).child("tenants")
        draws_a = [ZipfSampler(1000).draw(rng_a) for _ in range(500)]
        draws_b = [ZipfSampler(1000).draw(rng_b) for _ in range(500)]
        assert draws_a == draws_b

    def test_different_seeds_diverge(self):
        sampler = ZipfSampler(1000)
        draws_a = [sampler.draw(SeededRng(7)) for _ in range(200)]
        draws_b = [sampler.draw(SeededRng(8)) for _ in range(200)]
        assert draws_a != draws_b

    def test_rank_zero_is_most_popular(self):
        sampler = ZipfSampler(50)
        rng = SeededRng(3)
        counts = [0] * 50
        for _ in range(5000):
            counts[sampler.draw(rng)] += 1
        assert counts[0] == max(counts)
        assert counts[0] > 3 * counts[10]

    def test_shares_sum_to_one_and_decrease(self):
        sampler = ZipfSampler(20, exponent=1.0)
        shares = [sampler.share(rank) for rank in range(20)]
        assert sum(shares) == pytest.approx(1.0)
        assert shares == sorted(shares, reverse=True)

    def test_zero_exponent_is_uniform(self):
        sampler = ZipfSampler(10, exponent=0.0)
        assert sampler.share(0) == pytest.approx(0.1)
        assert sampler.share(9) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, exponent=-1.0)
        with pytest.raises(ValueError):
            ZipfSampler(10).share(10)

    def test_draws_stay_in_range(self):
        sampler = ZipfSampler(5)
        rng = SeededRng(11)
        assert all(0 <= sampler.draw(rng) < 5 for _ in range(1000))


class TestAggressor:
    def test_defaults(self):
        aggressor = Aggressor(rank=0)
        assert aggressor.multiplier == 10.0
        assert aggressor.active_until(30.0) == 30.0

    def test_stop_clamped_to_the_run(self):
        assert Aggressor(rank=0, stop=5.0).active_until(30.0) == 5.0
        assert Aggressor(rank=0, stop=50.0).active_until(30.0) == 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Aggressor(rank=-1)
        with pytest.raises(ValueError):
            Aggressor(rank=0, multiplier=0.0)
        with pytest.raises(ValueError):
            Aggressor(rank=0, start=5.0, stop=5.0)


class TestTenantPopulation:
    def test_stable_sortable_ids(self):
        population = TenantPopulation(100)
        assert population.tenant_id(0) == "t00000"
        assert population.tenant_id(99) == "t00099"
        assert len(population) == 100

    def test_rank_bounds(self):
        with pytest.raises(ValueError):
            TenantPopulation(10).tenant_id(10)

    def test_arrival_share_follows_zipf(self):
        population = TenantPopulation(10, zipf_exponent=1.0)
        assert population.arrival_share(0) == pytest.approx(
            2 * population.arrival_share(1))
