"""Tests for the deterministic load-generation harness (repro.loadgen)."""
