"""Legacy setup shim: the offline environment lacks the ``wheel`` package
that PEP 517 editable installs require, so ``pip install -e .`` goes
through this file instead (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
